//! Peer catch-up scenarios (§3.6): crashed, partitioned and late-joining
//! nodes must converge back to the network head — via block sync below
//! the snapshot lag threshold, via snapshot fast-sync above it — and end
//! up with byte-identical checkpoint hashes to the nodes that never
//! missed a block.

use std::time::{Duration, Instant};

use bcrdb::network::NetProfile;
use bcrdb::prelude::*;

const WAIT: Duration = Duration::from_secs(30);

const GENESIS: &str = "CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL); \
     CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$";

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bcrdb-catchup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Submit `count` transactions from `org`'s client, waiting for each
/// commit (so every transaction lands in its own timeout-cut block).
fn pump(net: &Network, org: &str, start_key: i64, count: i64) {
    let client = net.client(org, "pump").unwrap();
    for k in start_key..start_key + count {
        client
            .call("put")
            .arg(k)
            .arg(k * 10)
            .submit_wait_retrying(WAIT)
            .unwrap();
    }
}

/// Wait until `org`'s node reaches at least `height`.
fn await_org_height(net: &Network, org: &str, height: u64) {
    let deadline = Instant::now() + WAIT;
    loop {
        if net.node(org).unwrap().height() >= height {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{org} stuck at {} waiting for {height}",
            net.node(org).unwrap().height()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn assert_identical_checkpoints(net: &Network, at: u64) {
    let nodes = net.nodes();
    let reference = nodes[0]
        .checkpoints
        .local_hash(at)
        .expect("reference node has a checkpoint at head");
    for node in &nodes {
        assert_eq!(
            node.checkpoints.local_hash(at),
            Some(reference),
            "{} checkpoint at block {at} differs",
            node.config.name
        );
    }
    let hashes: Vec<_> = net.state_hashes();
    for (name, h) in &hashes[1..] {
        assert_eq!(h, &hashes[0].1, "{name} state diverged");
    }
}

/// Acceptance scenario: a node stopped for ≥ 8 blocks under a WAN
/// profile rejoins, fetches the missed blocks from its peers (the lag is
/// below the snapshot threshold, so the block path is exercised) and
/// reaches byte-identical checkpoint hashes with the live nodes.
#[test]
fn crashed_node_rejoins_via_block_sync_under_wan() {
    let root = temp_root("crash");
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    cfg.net_profile = NetProfile::wan();
    cfg.data_root = Some(root.clone());
    cfg.genesis_sql = Some(GENESIS.into());
    cfg.fsync = true; // crash durability: what we ack as stored, stays
    let net = Network::build(cfg).unwrap();

    pump(&net, "org1", 1, 3);
    let h0 = net.node("org1").unwrap().height();
    net.await_height(h0, WAIT).unwrap();

    // Crash org3. The live organizations keep committing ≥ 8 blocks.
    net.stop_node("org3").unwrap();
    pump(&net, "org1", 100, 8);
    await_org_height(&net, "org1", h0 + 8);
    let behind = net.node("org3").unwrap().height();

    // Rejoin: local replay from disk, then peer block sync to the head.
    let node = net.rejoin_node("org3").unwrap();
    let stats = node.last_sync_stats().expect("rejoin ran a catch-up");
    assert!(
        stats.fetched >= 8,
        "expected ≥ 8 blocks fetched, got {stats:?}"
    );
    assert_eq!(
        stats.replayed, stats.fetched,
        "below the lag threshold every block is replayed, not fast-synced"
    );
    assert!(stats.fast_sync_height.is_none());
    assert!(node.height() >= behind + 8);

    // The rejoined node serves reads and matches the live nodes exactly.
    let head = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(head, WAIT).unwrap();
    assert_identical_checkpoints(&net, head);
    let r = node.query("SELECT COUNT(*) FROM kv", &[]).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(11));

    net.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A node that lost its disk (late join from nothing) while the network
/// is far ahead fast-syncs from a peer snapshot instead of re-executing
/// the whole chain, then backfills its block store and keeps processing
/// live blocks — ending byte-identical with everyone else.
#[test]
fn late_joiner_fast_syncs_from_snapshot_under_wan() {
    let root = temp_root("latejoin");
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    cfg.net_profile = NetProfile::wan();
    cfg.data_root = Some(root.clone());
    cfg.genesis_sql = Some(GENESIS.into());
    cfg.snapshot_interval = 4; // servers refresh their fast-sync snapshot
    cfg.snapshot_lag_threshold = 6;
    let net = Network::build(cfg).unwrap();

    // Lose org2 early; the network commits ≥ 12 blocks without it, past
    // several snapshot points.
    pump(&net, "org1", 1, 2);
    net.stop_node("org2").unwrap();
    let org2_dir = root.join("org2");
    std::fs::remove_dir_all(&org2_dir).unwrap(); // the disk is gone too
    pump(&net, "org1", 200, 12);
    let live_head = net.node("org1").unwrap().height();
    assert!(live_head >= 12);

    let node = net.rejoin_node("org2").unwrap();
    let stats = node.last_sync_stats().expect("rejoin ran a catch-up");
    let snap_at = stats
        .fast_sync_height
        .expect("lag above threshold must fast-sync");
    assert!(
        stats.appended_only >= snap_at.min(stats.fetched),
        "blocks under the snapshot are appended, not re-executed: {stats:?}"
    );
    assert!(
        stats.replayed <= stats.fetched - stats.appended_only + 2,
        "only the tail beyond the snapshot replays: {stats:?}"
    );
    // The store is complete despite the skipped execution.
    assert_eq!(node.blockstore.height(), node.height());

    // And the node is live again: new traffic commits everywhere.
    pump(&net, "org2", 500, 2);
    let head = net.nodes().iter().map(|n| n.height()).max().unwrap();
    net.await_height(head, WAIT).unwrap();
    assert_identical_checkpoints(&net, head);
    assert_eq!(node.metrics().sync_fast_syncs(), 1);

    net.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A partitioned node (still running, but cut off) detects the delivery
/// gap once the partition heals and pulls the missed blocks from peers
/// through the processor's gap timer — no restart involved.
#[test]
fn partitioned_node_heals_and_catches_up() {
    let mut cfg = NetworkConfig::quick(&["org1", "org2", "org3"], Flow::OrderThenExecute);
    cfg.net_profile = NetProfile::lan();
    cfg.genesis_sql = Some(GENESIS.into());
    cfg.gap_timeout = Duration::from_millis(300);
    let net = Network::build(cfg).unwrap();

    pump(&net, "org1", 1, 2);
    let h0 = net.node("org1").unwrap().height();
    net.await_height(h0, WAIT).unwrap();

    // Cut org2 off; the rest of the network keeps committing.
    net.partition("org2").unwrap();
    pump(&net, "org1", 100, 4);
    await_org_height(&net, "org1", h0 + 4);
    let org2 = net.node("org2").unwrap();
    assert_eq!(org2.height(), h0, "partitioned node must be frozen");

    // Heal. The next delivered block is out of order; the gap timer
    // fires and the node syncs the missed range from a peer.
    net.heal("org2").unwrap();
    pump(&net, "org1", 300, 1);
    let head = net.node("org1").unwrap().height();
    net.await_height(head, WAIT).unwrap();

    assert!(org2.metrics().gap_events() >= 1, "gap must be detected");
    assert!(
        org2.metrics().sync_fetched() >= 4,
        "missed blocks must come from peer sync, got {}",
        org2.metrics().sync_fetched()
    );
    assert_identical_checkpoints(&net, head);

    net.shutdown();
}

/// The processor's out-of-order buffer is bounded: far-future blocks are
/// evicted (and counted) instead of accumulating without limit, and the
/// retained ones still process once the gap closes.
#[test]
fn pending_buffer_is_bounded() {
    use bcrdb::chain::block::{genesis_prev_hash, Block};
    use bcrdb::chain::tx::{Payload, Transaction};
    use bcrdb::crypto::identity::{Certificate, CertificateRegistry, KeyPair, Role, Scheme};
    use bcrdb::node::{Node, NodeConfig};
    use std::sync::Arc;

    let client = KeyPair::generate("org1/alice", b"alice", Scheme::Sim);
    let orderer = KeyPair::generate("ordering/orderer0", b"ord", Scheme::Sim);
    let certs = CertificateRegistry::new();
    certs.register(Certificate {
        name: "org1/alice".into(),
        org: "org1".into(),
        role: Role::Client,
        public_key: client.public_key(),
    });
    certs.register(Certificate {
        name: "ordering/orderer0".into(),
        org: "ordering".into(),
        role: Role::Orderer,
        public_key: orderer.public_key(),
    });

    let mut cfg = NodeConfig::new("org1/peer", "org1", Flow::OrderThenExecute);
    cfg.pending_cap = 4;
    let node = Node::new(cfg, Arc::clone(&certs), vec!["org1".into()]).unwrap();
    node.catalog()
        .create_table(
            bcrdb::common::schema::TableSchema::new(
                "kv",
                vec![
                    bcrdb::common::schema::Column::new("k", bcrdb::common::schema::DataType::Int),
                    bcrdb::common::schema::Column::new("v", bcrdb::common::schema::DataType::Int),
                ],
                vec![0],
            )
            .unwrap(),
        )
        .unwrap();
    if let bcrdb::sql::ast::Statement::CreateFunction(def) = bcrdb::sql::parse_statement(
        "CREATE FUNCTION put(k INT, v INT) AS $$ INSERT INTO kv VALUES ($1, $2) $$",
    )
    .unwrap()
    {
        node.contracts().install(def).unwrap();
    }

    // Build blocks 1..=10.
    let mut prev = genesis_prev_hash();
    let mut blocks = Vec::new();
    for n in 1..=10u64 {
        let tx = Transaction::new_order_execute(
            "org1/alice",
            Payload::new("put", vec![Value::Int(n as i64), Value::Int(n as i64)]),
            n,
            &client,
        )
        .unwrap();
        let mut b = Block::build(n, prev, vec![tx], "solo", vec![]);
        b.sign(&orderer).unwrap();
        prev = b.hash;
        blocks.push(Arc::new(b));
    }

    let (tx, rx) = crossbeam_channel::unbounded();
    node.start(rx);
    // Deliver 2..=10 first: 2..=5 fill the buffer (cap 4), 6..=10 are
    // evicted as farthest-out.
    for b in &blocks[1..] {
        tx.send(Arc::clone(b)).unwrap();
    }
    let deadline = Instant::now() + WAIT;
    while node.metrics().pending_evicted() < 5 {
        assert!(Instant::now() < deadline, "evictions never happened");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(node.height(), 0);
    assert!(node.metrics().held_back() <= 4);
    assert!(node.metrics().gap_events() >= 1);

    // Closing the gap drains the retained blocks 2..=5; the evicted tail
    // never arrives (that is what peer sync is for — see the scenarios
    // above).
    tx.send(Arc::clone(&blocks[0])).unwrap();
    let deadline = Instant::now() + WAIT;
    while node.height() < 5 {
        assert!(Instant::now() < deadline, "retained blocks never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(node.height(), 5);
    assert_eq!(node.metrics().pending_evicted(), 5);
    node.shutdown();
}
